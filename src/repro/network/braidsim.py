"""Cycle-accurate braid schedule simulator (Sections 6.1 and 6.3).

The simulator maintains "a ready queue of operations whose dependencies
have been met, and execute[s] as many of them as possible in each
cycle."  Braids claim circuit-switched routes atomically (no crossing,
no buffering), stabilize for d cycles, then close.  Forward progress in
a busy network uses route adaptivity on a dimension-ordered route and a
drop/re-inject mechanism, both after timeouts.

The implementation is event-driven -- time jumps between braid
expiries, local-op completions, and retry wakeups -- so large circuits
simulate in O(events), not O(cycles).  It still reproduces per-cycle
semantics: opens and closes issued at the same timestamp are ordered by
the active policy, and an open attempted before a same-cycle close sees
the link as busy (which is exactly what close-first prioritization
exploits).

The inner loop runs on flat data structures, and everything that does
not depend on the scheduling policy — tasks, dominant routes and link
masks, DAG arrays, the critical path — is precompiled into an immutable
:class:`~repro.network.plan.BraidPlan`, built once per design point and
shared by all seven policy simulations (see :mod:`repro.network.plan`):

* heap entries are single ints (``time << 34 | seq``) with a side list
  mapping ``seq`` to the event's kind and operation;
* link occupancy is the mesh's bitmask core, so a route is free iff
  ``route_mask & occupied == 0`` and claims/releases are big-int OR/AND;
* routes come precomputed from a shared :class:`~.routing.RouteTable`;
* per-op criticality and route-length keys are fetched into arrays once
  instead of rebuilding closures inside the issue fixpoint;
* a blocked open records the mesh *epoch* (release counter) at which its
  route search failed and skips the search entirely until a link is
  released or adaptivity widens its candidate set;
* close-first policies (5 and 6) keep their ready opens in an
  incrementally-maintained queue — arrival-ordered FIFO entries for
  Policy 5, criticality buckets with cached per-bucket sorts for
  Policy 6 — so each issue-fixpoint iteration re-sorts only what
  changed instead of the whole ready set.

The scheduler families (policies 7 and 8, machinery in
:mod:`.policies_sched`) ride the same event loop: the reservation
family gates ``_eligible_opens`` on each segment's reserved cycle and
wakes ops exactly there, and the scoreboard family plugs a
bitset-backed ready queue (oldest program index first) into the
close-first issue path while a dependency bit-matrix tracks wakeups.

For policies 0--6, results are bit-identical to the seed event loop,
which is preserved in :mod:`repro.network._braidsim_reference` and
enforced by the golden equivalence tests.  The scheduler families have
no seed oracle; their contract is flat-vs-vec bit-identity, enforced
by the cross-engine differential harness.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from bisect import bisect_left, insort
from typing import Optional

from ..analysis.diagnostics import PlanMismatchError
from ..partition.layout import Placement
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.codes import DOUBLE_DEFECT, SurfaceCode
from .events import OpTask
from .mesh import BraidMesh, Router
from .plan import DEFAULT_MAX_DETOUR, BraidPlan, braid_plan
from .policies import POLICIES, Policy
from .policies_sched import (
    MatrixScoreboard,
    ScoreboardReadyQueue,
    reservation_schedule,
    scoreboard_matrix,
)

__all__ = [
    "BraidSimConfig",
    "BraidSimResult",
    "BraidSimulator",
    "ENGINES",
    "engine_class",
    "simulate_braids",
    "simulate_plan",
]

ENGINES = ("flat", "vec", "reference")
"""Selectable braid engines.

* ``"flat"`` — this module's optimized flat-structure event loop (the
  default everywhere).
* ``"vec"`` — :mod:`.braidsim_vec`'s numpy-batched engine (requires
  the ``vec`` optional extra).
* ``"reference"`` — the preserved seed loop in
  :mod:`._braidsim_reference`, the semantic oracle.

All three produce bit-identical :class:`BraidSimResult`\\ s; the golden
tests and ``python -m repro bench --reference`` enforce it.
"""


def engine_class(engine: str) -> type:
    """Resolve an engine name to its simulator class.

    Raises:
        KeyError: On an unknown engine name.
        ImportError: For ``"vec"`` when numpy is not installed (the
            message names the ``vec`` extra).
    """
    if engine == "flat":
        return BraidSimulator
    if engine == "vec":
        from . import braidsim_vec

        if braidsim_vec.np is None:
            raise ImportError(braidsim_vec.NUMPY_HINT)
        return braidsim_vec.VecBraidSimulator
    if engine == "reference":
        from ._braidsim_reference import ReferenceBraidSimulator

        return ReferenceBraidSimulator
    raise KeyError(
        f"unknown braid engine {engine!r}; available: {sorted(ENGINES)}"
    )


@dataclasses.dataclass(frozen=True)
class BraidSimConfig:
    """Simulator knobs.

    Attributes:
        adaptive_timeout: Cycles an open may wait before route adaptivity
            (alternatives beyond the dimension-ordered route) kicks in.
        drop_timeout: Cycles before a blocked open is dropped and
            re-injected at the back of the ready queue.
        max_detour: Staircase detour radius for adaptive routing.
        max_cycles: Hard safety limit on simulated time.
    """

    adaptive_timeout: int = 2
    drop_timeout: int = 12
    max_detour: int = DEFAULT_MAX_DETOUR
    max_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        if self.adaptive_timeout < 0 or self.drop_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.drop_timeout <= self.adaptive_timeout:
            raise ValueError("drop_timeout must exceed adaptive_timeout")


@dataclasses.dataclass(frozen=True)
class BraidSimResult:
    """Outcome of one braid simulation.

    Attributes:
        schedule_length: Completion time of the last operation (cycles).
        critical_path: Dependence-limited lower bound with the same
            per-op latencies (cycles).
        mean_utilization: Time-averaged fraction of busy mesh links.
        operations: Total operations executed.
        braids: Braid segments opened (including re-opens after drops).
        adaptive_routes: Opens that needed a non-DOR route.
        drops: Drop/re-inject events.
    """

    schedule_length: int
    critical_path: int
    mean_utilization: float
    operations: int
    braids: int
    adaptive_routes: int
    drops: int

    @property
    def schedule_to_critical_ratio(self) -> float:
        """Figure 6's blue-bar metric."""
        if self.critical_path == 0:
            return 1.0
        return self.schedule_length / self.critical_path


# Phase codes (int-valued for flat array storage).
_WAITING, _READY, _HOLDING, _CLOSING, _DONE = range(5)


class _FifoReadyQueue:
    """Arrival-ordered ready opens for close-first FIFO policies (5).

    Arrival stamps are globally monotone, so the queue is an
    append-only list of ``(stamp, op)`` entries that is sorted by
    construction; removals and re-stamps invalidate entries lazily
    (an entry is live iff its op is still ready *and* carries the
    entry's stamp).  :meth:`ordered` therefore replaces the per-
    fixpoint-iteration O(n log n) sort with one linear scan, and
    compacts the backing list when stale entries pile up.
    """

    __slots__ = ("_arrival", "_entries")

    def __init__(self, arrival: list[int]) -> None:
        self._arrival = arrival
        self._entries: list[tuple[int, int]] = []

    def add(self, op: int) -> None:
        self._entries.append((self._arrival[op], op))

    def remove(self, op: int) -> None:
        pass  # lazy: the entry dies with its stale ready-set membership

    def restamp(self, op: int) -> None:
        # Drop/re-inject: the old entry goes stale, the new stamp is
        # larger than every existing one so appending keeps the order.
        self._entries.append((self._arrival[op], op))

    def ordered(self, ready: set[int]) -> list[int]:
        arrival = self._arrival
        out = [
            op
            for stamp, op in self._entries
            if op in ready and arrival[op] == stamp
        ]
        if len(self._entries) > 2 * len(out) + 64:
            self._entries = [(arrival[op], op) for op in out]
        return out


class _BucketReadyQueue:
    """Criticality-bucketed ready opens for Policy 6's combined rule.

    The combined key ``(-crit, ±length, arrival, op)`` orders ops by
    criticality bucket first; only the *sign* of the length component
    depends on the ready set (via the median-criticality threshold).
    Buckets are therefore kept per criticality value with their sorted
    order cached per (membership, sign): a fixpoint iteration re-sorts
    only buckets whose membership changed or whose side of the
    threshold flipped, and concatenates cached runs for the rest —
    a partial resort instead of re-sorting the whole ready set.
    """

    __slots__ = (
        "_crit",
        "_length",
        "_arrival",
        "_buckets",
        "_order_cache",
        "_crits",
        "_distinct",
    )

    def __init__(
        self, crit: list[int], length: list[int], arrival: list[int]
    ) -> None:
        self._crit = crit
        self._length = length
        self._arrival = arrival
        self._buckets: dict[int, list[int]] = {}
        # crit -> (is_high_side, members sorted for that side)
        self._order_cache: dict[int, tuple[bool, list[int]]] = {}
        self._crits: list[int] = []  # multiset, ascending
        self._distinct: list[int] = []  # distinct crits, ascending

    def add(self, op: int) -> None:
        crit = self._crit[op]
        bucket = self._buckets.get(crit)
        if bucket is None:
            self._buckets[crit] = [op]
            insort(self._distinct, crit)
        else:
            bucket.append(op)
        self._order_cache.pop(crit, None)
        insort(self._crits, crit)

    def remove(self, op: int) -> None:
        crit = self._crit[op]
        bucket = self._buckets[crit]
        bucket.remove(op)
        self._order_cache.pop(crit, None)
        if not bucket:
            del self._buckets[crit]
            self._distinct.pop(bisect_left(self._distinct, crit))
        self._crits.pop(bisect_left(self._crits, crit))

    def restamp(self, op: int) -> None:
        # Arrival changed: membership is intact but the cached order
        # within the op's bucket is no longer trustworthy.
        self._order_cache.pop(self._crit[op], None)

    def ordered(self, ready: set[int]) -> list[int]:
        crits = self._crits
        n = len(crits)
        if n == 0:
            return []
        # Median of the ready criticalities, descending convention:
        # values_desc[(n - 1) // 2] == values_asc[n - 1 - (n - 1) // 2].
        threshold = crits[n - 1 - (n - 1) // 2]
        length = self._length
        arrival = self._arrival
        cache = self._order_cache
        out: list[int] = []
        for crit in reversed(self._distinct):
            high = crit >= threshold
            cached = cache.get(crit)
            if cached is None or cached[0] is not high:
                if high:
                    run = sorted(
                        self._buckets[crit],
                        key=lambda op: (length[op], arrival[op], op),
                    )
                else:
                    run = sorted(
                        self._buckets[crit],
                        key=lambda op: (-length[op], arrival[op], op),
                    )
                cache[crit] = (high, run)
            else:
                run = cached[1]
            out.extend(run)
        return out

# Event kinds, packed into the low bits of the per-seq meta entry.
_EXPIRY, _LOCAL, _WAKE = range(3)

_SEQ_BITS = 34
_SEQ_LIMIT = 1 << _SEQ_BITS
_SEQ_MASK = _SEQ_LIMIT - 1


class BraidSimulator:
    """Single-run braid schedule simulator.

    Use :func:`simulate_braids` for the common path (it memoizes the
    policy-independent :class:`~repro.network.plan.BraidPlan` per
    design point), :func:`simulate_plan` to run several policies from
    one prebuilt plan, and instantiate directly to inspect internals
    or inject custom tasks.
    """

    def __init__(
        self,
        circuit: Optional[Circuit] = None,
        placement: Optional[Placement] = None,
        mesh: Optional[BraidMesh] = None,
        policy: Optional[Policy] = None,
        distance: Optional[int] = None,
        code: SurfaceCode = DOUBLE_DEFECT,
        factory_routers: tuple[Router, ...] = (),
        config: Optional[BraidSimConfig] = None,
        dag: Optional[CircuitDag] = None,
        tasks: Optional[list[OpTask]] = None,
        plan: Optional[BraidPlan] = None,
    ) -> None:
        if policy is None:
            raise TypeError("BraidSimulator requires a policy")
        self.config = config or BraidSimConfig()
        if plan is None:
            if circuit is None or placement is None or mesh is None or (
                distance is None
            ):
                raise TypeError(
                    "BraidSimulator needs either a plan or "
                    "(circuit, placement, mesh, distance)"
                )
            plan = BraidPlan.build(
                circuit,
                placement,
                mesh,
                code,
                distance,
                factory_routers,
                max_detour=self.config.max_detour,
                dag=dag,
                tasks=tasks,
            )
        elif plan.max_detour != self.config.max_detour:
            raise PlanMismatchError(
                f"plan was compiled with max_detour={plan.max_detour}, "
                f"config wants {self.config.max_detour}",
                artifact=f"plan for {plan.circuit.name!r}",
            )
        elif distance is not None and distance != plan.distance:
            raise PlanMismatchError(
                f"plan was compiled for distance={plan.distance}, "
                f"got distance={distance}; build a plan per distance",
                artifact=f"plan for {plan.circuit.name!r}",
            )
        self.plan = plan
        self.circuit = plan.circuit
        self.dag = plan.dag
        self.tasks = plan.tasks
        # The mesh is the only mutable run-time structure shared with
        # callers: reuse a provided one, else make a fresh empty mesh.
        self.mesh = mesh if mesh is not None else BraidMesh(
            plan.rows, plan.cols
        )
        self.policy = policy
        self.num_ops = plan.num_ops
        n = self.num_ops

        self._phase = [_WAITING] * n
        self._segment_index = [0] * n
        self._remaining_preds = list(plan.in_degrees)  # mutable copy
        self._successors = plan.successors  # shared, read-only
        self._wait_start = [0] * n
        self._arrival = [0] * n
        self._arrival_counter = itertools.count()
        self._ready_opens: set[int] = set()
        self._closing: list[int] = []
        # Event heap entries: time << 34 | seq, with the event's kind
        # and op packed into _event_meta[seq].  Ordering is (time, seq),
        # exactly the seed's (time, tiebreak) tuple order.  Meta entries
        # are popped with their events, so memory tracks outstanding
        # events, not every event ever scheduled.
        self._events: list[int] = []
        self._event_meta: dict[int, int] = {}
        self._event_seq = 0
        self._completion_time = 0
        self._busy_integral = 0
        self._last_time = 0
        self._braids = 0
        self._adaptive = 0
        self._drops = 0
        self._p0_head = 0  # policy-0 program-order cursor

        # Flat per-op scheduling keys, shared read-only from the plan.
        # Criticality is only materialized for policies that rank by it
        # (the DAG's lazy descendant counts are shared across plans).
        self._is_braid = plan.is_braid
        self._route_length = plan.route_length
        if policy.use_criticality or policy.combined_length_rule:
            self._criticality = plan.criticality()
        else:
            self._criticality = []

        # Per-op, per-segment route handles: (src, dst, hold, min_len,
        # dor_path, dor_mask), prebound through the shared route table.
        self._routes = plan.routes
        self._segments = plan.segments

        # Blocked-open memo: the mesh epoch at which this op's last
        # route search failed, and whether that search was adaptive.
        self._fail_epoch = [-1] * n
        self._fail_adaptive = [False] * n

        # Close-first policies re-derive the open order at every issue
        # fixpoint iteration; an incrementally-maintained queue replaces
        # the full ready-set sort (see the queue classes above).  Policy
        # combinations without a specialized queue fall back to
        # :meth:`_sort_opens`, which stays the semantic reference (the
        # golden tests assert the queues reproduce it exactly).
        # Scheduler families (policies 7/8): plan-derived artifacts,
        # memoized per plan and shared with the vec engine and the IR
        # verifier (see repro.network.policies_sched).
        self._resv = (
            reservation_schedule(plan)
            if policy.family == "reservation"
            else None
        )
        self._scoreboard = (
            MatrixScoreboard(scoreboard_matrix(plan))
            if policy.family == "scoreboard"
            else None
        )

        self._open_queue: Optional[
            _FifoReadyQueue | _BucketReadyQueue | ScoreboardReadyQueue
        ]
        if self._scoreboard is not None:
            self._open_queue = ScoreboardReadyQueue(self._scoreboard)
        elif policy.closes_first and policy.combined_length_rule:
            self._open_queue = _BucketReadyQueue(
                self._criticality, self._route_length, self._arrival
            )
        elif policy.closes_first and not (
            policy.use_criticality or policy.use_length
        ):
            self._open_queue = _FifoReadyQueue(self._arrival)
        else:
            self._open_queue = None

    # -- public API ---------------------------------------------------------

    def run(self) -> BraidSimResult:
        for op in self.plan.sources:
            self._make_ready(op, time=0)
        self._schedule_event(0, _WAKE, -1)
        events = self._events
        meta = self._event_meta
        max_cycles = self.config.max_cycles
        heappop = heapq.heappop
        while events:
            entry = heappop(events)
            time = entry >> _SEQ_BITS
            if time > max_cycles:
                raise RuntimeError(
                    f"braid simulation exceeded {max_cycles} "
                    "cycles; likely livelock"
                )
            self._integrate_busy(time)
            batch = [meta.pop(entry & _SEQ_MASK)]
            while events and events[0] >> _SEQ_BITS == time:
                batch.append(meta.pop(heappop(events) & _SEQ_MASK))
            self._process_timestep(time, batch)
        phase = self._phase
        unfinished = [
            i for i in range(self.num_ops) if phase[i] != _DONE
        ]
        if unfinished:
            raise RuntimeError(
                f"braid simulation stalled with {len(unfinished)} "
                f"unfinished operations (first: {unfinished[:5]}); this "
                "is a simulator bug"
            )
        if self._scoreboard is not None:
            dirty = self._scoreboard.outstanding()
            if dirty:
                raise RuntimeError(
                    f"scoreboard finished with {dirty} rows still "
                    "holding dependency bits; retire bookkeeping "
                    "diverged from the event loop"
                )
        critical = self.plan.critical_path
        total_time = max(self._completion_time, 1)
        return BraidSimResult(
            schedule_length=self._completion_time,
            critical_path=critical,
            mean_utilization=(
                self._busy_integral / (total_time * self.mesh.num_links)
            ),
            operations=self.num_ops,
            braids=self._braids,
            adaptive_routes=self._adaptive,
            drops=self._drops,
        )

    # -- internals ------------------------------------------------------------

    def _integrate_busy(self, now: int) -> None:
        if now > self._last_time:
            self._busy_integral += self.mesh.busy_links() * (
                now - self._last_time
            )
            self._last_time = now

    def _schedule_event(self, time: int, kind: int, op: int) -> None:
        seq = self._event_seq
        if seq >= _SEQ_LIMIT:
            raise RuntimeError("braid simulation event counter overflow")
        self._event_seq = seq + 1
        self._event_meta[seq] = ((op + 1) << 2) | kind
        heapq.heappush(self._events, (time << _SEQ_BITS) | seq)

    def _make_ready(self, op: int, time: int) -> None:
        if self._is_braid[op]:
            self._phase[op] = _READY
            self._wait_start[op] = time
            self._arrival[op] = next(self._arrival_counter)
            self._ready_opens.add(op)
            if self._open_queue is not None:
                self._open_queue.add(op)
            if self._resv is not None:
                # Reserved-cycle gate: wake exactly when the table says
                # this segment issues (no event may exist there yet).
                cycle = self._resv.reserved[op][self._segment_index[op]]
                if cycle > time:
                    self._schedule_event(cycle, _WAKE, -1)
        else:
            # Local op: runs unconditionally for its duration.
            self._phase[op] = _HOLDING
            self._schedule_event(
                time + self.tasks[op].local_cycles, _LOCAL, op
            )

    def _complete(self, op: int, time: int) -> None:
        self._phase[op] = _DONE
        if time > self._completion_time:
            self._completion_time = time
        if self._scoreboard is not None:
            # Clear this op's column before readying successors, so a
            # wakeup (zero row) is visible the moment an op is ready.
            self._scoreboard.retire(op, self._successors)
        remaining = self._remaining_preds
        for succ in self._successors[op]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                self._make_ready(succ, time)

    def _process_timestep(self, time: int, batch: list[int]) -> None:
        phase = self._phase
        for packed in batch:
            kind = packed & 3
            if kind == _LOCAL:
                self._complete((packed >> 2) - 1, time)
            elif kind == _EXPIRY:
                op = (packed >> 2) - 1
                if phase[op] == _HOLDING:
                    phase[op] = _CLOSING
                    self._closing.append(op)
            # _WAKE entries only force a timestep.
        self._issue_events(time)

    def _eligible_opens(self, time: int) -> list[int]:
        if self._resv is not None:
            # Reservation gate: an op may only issue on (or after) its
            # segment's reserved cycle; a _WAKE is always pending for
            # gated ops, scheduled when they became ready.
            reserved = self._resv.reserved
            seg_index = self._segment_index
            return [
                op
                for op in self._ready_opens
                if reserved[op][seg_index[op]] <= time
            ]
        if self.policy.interleave:
            return list(self._ready_opens)
        # Policy 0: the lowest-index incomplete braid op proceeds alone.
        head = self._p0_head
        is_braid = self._is_braid
        phase = self._phase
        while head < self.num_ops and (
            not is_braid[head] or phase[head] == _DONE
        ):
            head += 1
        self._p0_head = head
        if head < self.num_ops and head in self._ready_opens:
            return [head]
        return []

    def _sort_opens(self, opens: list[int]) -> list[int]:
        """Policy open order for close-first issue sequences.

        Matches ``Policy.open_sort_key`` exactly: every key ends in the
        unique FIFO arrival stamp, so the sort is total and reduces to
        plain tuple sorts over prefetched arrays.
        """
        policy = self.policy
        arrival = self._arrival
        if policy.family == "scoreboard":
            # Oldest ready = lowest program index (matrix-wakeup age).
            opens.sort()
            return opens
        if policy.combined_length_rule:
            crit = self._criticality
            length = self._route_length
            values = sorted((crit[op] for op in opens), reverse=True)
            # "Highest criticality" = top half of the ready set (the
            # boundary value of the upper half, so ties stay together).
            threshold = values[(len(values) - 1) // 2] if values else 0
            decorated = []
            for op in opens:
                c = crit[op]
                key_len = length[op] if c >= threshold else -length[op]
                decorated.append((-c, key_len, arrival[op], op))
            decorated.sort()
            return [entry[3] for entry in decorated]
        if policy.use_criticality:
            crit = self._criticality
            decorated = [(-crit[op], arrival[op], op) for op in opens]
            decorated.sort()
            return [entry[2] for entry in decorated]
        if policy.use_length:
            length = self._route_length
            decorated = [(-length[op], arrival[op], op) for op in opens]
            decorated.sort()
            return [entry[2] for entry in decorated]
        opens.sort(key=arrival.__getitem__)
        return opens

    def _issue_events(self, time: int) -> None:
        # Fixpoint within the timestep: closes can complete operations,
        # whose successors become ready and may open in the same cycle
        # (the greedy "place as many braids as possible" rule).
        closes_first = self.policy.closes_first
        any_release_with_blocked = False
        while True:
            closes = sorted(self._closing)
            self._closing = []
            if closes_first:
                # Closes in index order, then opens in policy order (the
                # incremental queue when the policy has one).
                if self._open_queue is not None:
                    ordered = self._open_queue.ordered(self._ready_opens)
                else:
                    ordered = self._sort_opens(self._eligible_opens(time))
                sequence = [(op, True) for op in closes]
                sequence += [(op, False) for op in ordered]
            else:
                opens = self._eligible_opens(time)
                # Unprioritized: events interleave by program order.
                # (The policy's open ordering collapses to op index
                # here, exactly as the seed's merged sort did.)
                sequence = sorted(
                    [(op, True) for op in closes]
                    + [(op, False) for op in opens]
                )
            progress = False
            released_any = False
            blocked_any = False
            for op, is_close in sequence:
                if is_close:
                    self._close_segment(op, time)
                    released_any = True
                    progress = True
                else:
                    opened = self._try_open(op, time)
                    progress |= opened
                    blocked_any |= not opened
            any_release_with_blocked |= released_any and blocked_any
            if not progress or (not self._closing and not self._ready_opens):
                break
        if any_release_with_blocked and self._ready_opens:
            # Links freed this cycle; blocked opens retry next cycle.
            self._schedule_event(time + 1, _WAKE, -1)

    def _close_segment(self, op: int, time: int) -> None:
        self.mesh.release(op)
        self._segment_index[op] += 1
        if self._segment_index[op] >= len(self._segments[op]):
            self._complete(op, time)
        else:
            self._phase[op] = _READY
            self._wait_start[op] = time
            self._arrival[op] = next(self._arrival_counter)
            self._ready_opens.add(op)
            if self._open_queue is not None:
                self._open_queue.add(op)
            if self._resv is not None:
                cycle = self._resv.reserved[op][self._segment_index[op]]
                if cycle > time:
                    self._schedule_event(cycle, _WAKE, -1)

    def _try_open(self, op: int, time: int) -> bool:
        config = self.config
        mesh = self.mesh
        waited = time - self._wait_start[op]
        adaptive = waited >= config.adaptive_timeout
        path = None
        mask = 0
        # Epoch early-out: a search that failed at this mesh epoch with
        # the same (or a wider) candidate set must fail again -- claims
        # since then only shrank the free set.
        if self._fail_epoch[op] == mesh.epoch and (
            self._fail_adaptive[op] or not adaptive
        ):
            pass
        else:
            src, dst, hold, min_len, dor_path, dor_mask = self._segments[
                op
            ][self._segment_index[op]]
            occupied = mesh.occupied_mask
            if dor_mask & occupied == 0:
                path, mask = dor_path, dor_mask
            elif adaptive:
                for cand_path, cand_mask in self._routes.alternatives(
                    src, dst
                ):
                    if cand_mask & occupied == 0:
                        path, mask = cand_path, cand_mask
                        break
        if path is None:
            if self._fail_epoch[op] == mesh.epoch:
                # Keep an adaptive failure sticky within the epoch: a
                # post-drop non-adaptive miss must not narrow the memo.
                self._fail_adaptive[op] |= adaptive
            else:
                self._fail_epoch[op] = mesh.epoch
                self._fail_adaptive[op] = adaptive
            if waited >= config.drop_timeout:
                # Drop and re-inject at the back of the ready queue.
                self._drops += 1
                self._wait_start[op] = time
                self._arrival[op] = next(self._arrival_counter)
                if self._open_queue is not None:
                    self._open_queue.restamp(op)
            if not adaptive:
                # Make sure the op is retried once adaptivity unlocks,
                # even if no braid closes in the meantime.
                self._schedule_event(
                    self._wait_start[op] + config.adaptive_timeout,
                    _WAKE,
                    -1,
                )
            return False
        # A found path implies the search branch ran, so the segment
        # fields (hold, min_len) are bound.
        if adaptive and len(path) - 1 > min_len:
            self._adaptive += 1
        mesh.claim_mask(mask, op)
        self._ready_opens.discard(op)
        if self._open_queue is not None:
            self._open_queue.remove(op)
        self._phase[op] = _HOLDING
        self._braids += 1
        # Open takes this cycle; stabilize for `hold`; then close.
        self._schedule_event(time + 1 + hold, _EXPIRY, op)
        return True


def _require_reference_support(policy: Policy) -> None:
    """The preserved seed loop predates the scheduler families."""
    if policy.family != "reactive":
        raise ValueError(
            f"{policy.name} ({policy.family} family) has no reference-"
            "engine implementation; its oracle is the flat-vs-vec "
            'differential harness (use engine="flat" or "vec")'
        )


def simulate_braids(
    circuit: Circuit,
    placement: Placement,
    mesh: BraidMesh,
    policy: Policy | int,
    distance: int,
    code: SurfaceCode = DOUBLE_DEFECT,
    factory_routers: tuple[Router, ...] = (),
    config: Optional[BraidSimConfig] = None,
    dag: Optional[CircuitDag] = None,
    engine: str = "flat",
) -> BraidSimResult:
    """Simulate a circuit's braid schedule under one policy.

    Args:
        circuit: Flat Clifford+T circuit.
        placement: Data-qubit placement on the tile grid.
        mesh: Braid mesh matching the placement's grid.
        policy: A :class:`Policy` or its number (0-8).
        distance: Code distance d.
        code: Surface code variant (defaults to double-defect).
        factory_routers: Magic-state factory endpoints.
        config: Timeout/limit knobs.
        dag: Optional pre-built dependence DAG.
        engine: Braid engine (see :data:`ENGINES`); all engines return
            bit-identical results.
    """
    if isinstance(policy, int):
        policy = POLICIES[policy]
    if engine == "reference":
        _require_reference_support(policy)
        from ._braidsim_reference import simulate_braids_reference

        return simulate_braids_reference(
            circuit,
            placement,
            mesh,
            policy,
            distance,
            code=code,
            factory_routers=factory_routers,
            config=config,
            dag=dag,
        )
    cls = engine_class(engine)
    config = config or BraidSimConfig()
    plan = braid_plan(
        circuit,
        placement,
        mesh,
        code,
        distance,
        factory_routers,
        max_detour=config.max_detour,
        dag=dag,
    )
    return cls(policy=policy, config=config, plan=plan, mesh=mesh).run()


def simulate_plan(
    plan: BraidPlan,
    policy: Policy | int,
    config: Optional[BraidSimConfig] = None,
    engine: str = "flat",
) -> BraidSimResult:
    """Simulate one policy from a prebuilt (shared) plan.

    The plan is read-only: callers can run all seven policies from the
    same plan, concurrently or in sequence, and each simulation gets
    fresh mutable state (mesh occupancy, phases, event heap).  The
    ``engine`` selects the implementation (see :data:`ENGINES`); the
    reference engine replays the plan's circuit/placement on a fresh
    mesh through the preserved seed loop.
    """
    if isinstance(policy, int):
        policy = POLICIES[policy]
    if engine == "reference":
        _require_reference_support(policy)
        from ._braidsim_reference import simulate_braids_reference

        return simulate_braids_reference(
            plan.circuit,
            plan.placement,
            BraidMesh(plan.rows, plan.cols),
            policy,
            plan.distance,
            code=plan.code,
            factory_routers=plan.factory_routers,
            config=config,
            dag=plan.dag,
        )
    cls = engine_class(engine)
    return cls(policy=policy, config=config, plan=plan).run()
