"""Vectorized braid engine: batched open-candidate tests on numpy bitsets.

The flat engine (:mod:`.braidsim`) pays two structural costs in its
issue fixpoint: per-round ready-queue maintenance (every make-ready,
open, close, and drop updates the incremental policy queues, and every
round rebuilds an ``(op, is_close)`` sequence list), and — under
contention — the per-braid ``_try_open`` route scan, re-run for every
blocked op each time a release invalidates the epoch memo.  This
engine replaces both:

* link occupancy and every route mask are packed into uint64 *words*
  (word ``i`` holds links ``64i..64i+63``), each segment's dominant
  route is a prepacked word row, and the adaptive candidates of a
  ``(src, dst)`` pair are one block of a lazily grown bank matrix,
  rows in the exact preference order of
  :meth:`~.routing.RouteTable.alternatives`.  When a fixpoint round
  queues :data:`_BATCH_MIN` or more candidate opens, their
  current-segment rows are stacked into a ``(candidates, words)``
  matrix and "which blocked braids could open now" is one broadcast
  AND + any reduction (plus a segmented ``logical_and.reduceat`` over
  the bank) instead of a Python route scan per braid, and the policy
  order (criticality / route length / the combined median rule) is
  one ``np.lexsort`` over arrays prefetched from the shared plan;
* below the batch threshold the engine runs the scalar
  :meth:`~.braidsim.BraidSimulator._sort_opens` ordering directly —
  with no incremental queues to maintain, and with empty/singleton
  ready sets short-circuited before any list is built.

The batched test is a *prefilter*, not the final word: occupancy only
grows while a round's opens are walked, so an op whose every candidate
is blocked against the round's occupancy floor is guaranteed to fail
at its turn — only its failure bookkeeping runs, bit-for-bit the flat
engine's.  Survivors go through the inherited scalar ``_try_open``,
which performs the authoritative search, claim, and counter updates.
Results are therefore bit-identical to the flat engine and to the seed
loop in :mod:`._braidsim_reference`, which the golden tests and every
``bench --reference`` run enforce.

The plan-derived arrays (mask words, alternative bank, key arrays) are
cached per :class:`~.plan.BraidPlan` identity and shared by all
policy simulations of a design point; they are derived *from* the plan
and never written back — the plan stays read-only.

The scheduler families (policies 7/8) reuse this loop unchanged except
that the scoreboard family's dependency rows and ready bitset are kept
as ``<u8`` word arrays (:class:`_VecMatrixScoreboard`), so the
oldest-ready selection is one ``unpackbits``/``nonzero`` pass — the
vectorized select the flat engine's big-int walk mirrors bit for bit.

numpy is an optional dependency (the ``vec`` extra): importing this
module without it is fine, but constructing the engine raises an
``ImportError`` that names the extra.
"""

from __future__ import annotations

from collections import OrderedDict

try:  # numpy is the "vec" optional extra, not a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from .braidsim import _WAKE, BraidSimulator
from .plan import BraidPlan
from .policies_sched import ScoreboardReadyQueue, scoreboard_matrix

__all__ = ["VecBraidSimulator", "NUMPY_HINT", "vec_plan_arrays"]

NUMPY_HINT = (
    "the vectorized braid engine needs numpy; install the optional "
    'extra ("pip install repro[vec]" or "pip install numpy") or use '
    'engine="flat"'
)

_BATCH_MIN = 8
"""Candidate opens below which a round runs the scalar path.

Purely a performance threshold — the batched prefilter only ever
classifies *guaranteed* failures, so both paths produce identical
results; the golden tests run contention scenarios on both sides."""

_WORD_DTYPE = "<u8"  # little-endian uint64: word i holds links 64i..64i+63


def _mask_words(mask: int, words: int):
    """Unpack a big-int link mask into a (words,) uint64 array."""
    return np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=_WORD_DTYPE
    )


def _words_mask(row) -> int:
    """Repack a (words,) uint64 array into the big-int link mask."""
    return int.from_bytes(row.tobytes(), "little")


class _VecPlanArrays:
    """Word-packed, read-only views of one plan's routing data.

    Built once per :class:`BraidPlan` and shared by every policy
    simulation of that plan (see :func:`vec_plan_arrays`).  The
    alternative bank grows lazily — a ``(src, dst)`` pair's block is
    packed on the first adaptive test that needs it — and consolidates
    into one matrix on demand so the gather stays a single fancy index.
    """

    __slots__ = (
        "plan", "words", "seg_rows", "route_length",
        "_criticality", "_pair_span", "_pending", "_matrix", "_size",
    )

    def __init__(self, plan: BraidPlan) -> None:
        self.plan = plan
        num_links = (plan.rows + 1) * plan.cols + plan.rows * (
            plan.cols + 1
        )
        self.words = max(1, (num_links + 63) // 64)
        seg_rows: list[tuple] = []
        for segs in plan.segments:
            seg_rows.append(
                tuple(_mask_words(seg[5], self.words) for seg in segs)
            )
        self.seg_rows = seg_rows
        self.route_length = np.asarray(plan.route_length, dtype=np.int64)
        self._criticality = None
        self._pair_span: dict[tuple, tuple[int, int]] = {}
        self._pending: list = []
        self._matrix = np.zeros((0, self.words), dtype=_WORD_DTYPE)
        self._size = 0

    def criticality(self):
        if self._criticality is None:
            self._criticality = np.asarray(
                self.plan.criticality(), dtype=np.int64
            )
        return self._criticality

    def pair_span(self, src, dst) -> tuple[int, int]:
        """(start, count) of the pair's candidate rows in the bank."""
        span = self._pair_span.get((src, dst))
        if span is None:
            alts = self.plan.routes.alternatives(src, dst)
            block = np.stack(
                [_mask_words(mask, self.words) for _, mask in alts]
            )
            span = (self._size, len(alts))
            self._pair_span[(src, dst)] = span
            self._pending.append(block)
            self._size += len(alts)
        return span

    def bank_matrix(self):
        if self._pending:
            self._matrix = np.concatenate([self._matrix, *self._pending])
            self._pending = []
        return self._matrix


_WORD64 = 0xFFFFFFFFFFFFFFFF


class _VecMatrixScoreboard:
    """Word-packed flavor of :class:`~.policies_sched.MatrixScoreboard`.

    Same bits, same protocol — dependency rows and the ready bitset
    live as ``<u8`` word arrays (the engine's link-mask idiom), column
    clears are fancy-indexed word ANDs, and the oldest-ready selection
    is one ``unpackbits`` + ``nonzero`` over the ready words instead
    of a per-bit Python walk.
    """

    __slots__ = ("rows_words", "ready_words", "num_ops")

    def __init__(self, matrix, num_ops: int) -> None:
        words = max(1, (num_ops + 63) // 64)
        if num_ops:
            self.rows_words = np.stack(
                [_mask_words(row, words) for row in matrix]
            ).copy()  # frombuffer rows are read-only; columns mutate
        else:
            self.rows_words = np.zeros((0, words), dtype=_WORD_DTYPE)
        self.ready_words = np.zeros(words, dtype=_WORD_DTYPE)
        self.num_ops = num_ops

    def retire(self, op: int, successors) -> None:
        succs = successors[op]
        if succs:
            clear = np.uint64(~(1 << (op & 63)) & _WORD64)
            self.rows_words[list(succs), op >> 6] &= clear

    def row_clear(self, op: int) -> bool:
        return not self.rows_words[op].any()

    def outstanding(self) -> int:
        return int(self.rows_words.any(axis=1).sum())

    def add_ready(self, op: int) -> None:
        self.ready_words[op >> 6] |= np.uint64(1 << (op & 63))

    def remove_ready(self, op: int) -> None:
        self.ready_words[op >> 6] &= np.uint64(
            ~(1 << (op & 63)) & _WORD64
        )

    def ordered_ready(self) -> list[int]:
        bits = np.unpackbits(
            self.ready_words.view(np.uint8), bitorder="little"
        )
        return np.nonzero(bits)[0].tolist()


_VEC_MEMO: "OrderedDict[int, _VecPlanArrays]" = OrderedDict()
VEC_MEMO_CAPACITY = 8


def vec_plan_arrays(plan: BraidPlan) -> _VecPlanArrays:
    """Per-plan word-array cache (id-keyed, identity-checked LRU).

    Mirrors the :func:`~.plan.braid_plan` memo idiom: the entry keeps
    its plan alive, so an id hit that passes the ``is`` check can only
    be the plan the arrays were packed for.
    """
    if np is None:
        raise ImportError(NUMPY_HINT)
    key = id(plan)
    entry = _VEC_MEMO.get(key)
    if entry is not None and entry.plan is plan:
        _VEC_MEMO.move_to_end(key)
        return entry
    entry = _VecPlanArrays(plan)
    _VEC_MEMO[key] = entry
    _VEC_MEMO.move_to_end(key)
    while len(_VEC_MEMO) > VEC_MEMO_CAPACITY:
        _VEC_MEMO.popitem(last=False)
    return entry


class VecBraidSimulator(BraidSimulator):
    """Braid simulator with numpy-batched open-candidate tests.

    Same constructor, event loop, and results as
    :class:`~.braidsim.BraidSimulator`; only the issue fixpoint is
    replaced (see the module docstring for the batching scheme and the
    scalar fast paths below the batch threshold).
    """

    def __init__(self, *args, **kwargs) -> None:
        if np is None:
            raise ImportError(NUMPY_HINT)
        super().__init__(*args, **kwargs)
        if self._scoreboard is not None:
            # Scoreboard family: swap in the word-packed flavor (same
            # bits, vectorized select) before anything enqueues.
            self._scoreboard = _VecMatrixScoreboard(
                scoreboard_matrix(self.plan), self.num_ops
            )
            self._open_queue = ScoreboardReadyQueue(self._scoreboard)
        else:
            # The incremental ready queues are superseded: small rounds
            # sort directly (cheaper than queue upkeep at fig6's
            # ready-set sizes), large rounds lexsort over prefetched
            # arrays.
            self._open_queue = None
        vec = vec_plan_arrays(self.plan)
        self._vec = vec
        # Lazily bound (start, count) into the alternative bank,
        # stamped with the segment it was bound for (ops advance
        # through segments, invalidating the binding).
        n = self.num_ops
        self._alt_start = [0] * n
        self._alt_count = [0] * n
        self._alt_seg = [-1] * n
        self._len_arr = vec.route_length
        if self.policy.use_criticality or self.policy.combined_length_rule:
            self._crit_arr = vec.criticality()
        else:
            self._crit_arr = None

    # -- plumbing -----------------------------------------------------------

    def _occ_words(self, occupied: int):
        """A big-int occupancy mask as uint64 words."""
        return np.frombuffer(
            occupied.to_bytes(self._vec.words * 8, "little"),
            dtype=_WORD_DTYPE,
        )

    # -- batched open tests -------------------------------------------------

    def _ordered_opens_vec(self, opens: list[int]) -> list[int]:
        """Policy open order as one lexsort over prefetched arrays.

        Matches :meth:`BraidSimulator._sort_opens` exactly: every key
        ends in (arrival, op), so the order is total and deterministic
        regardless of the ready set's iteration order.
        """
        ops = np.asarray(opens, dtype=np.int64)
        arrival_list = self._arrival
        arrival = np.fromiter(
            (arrival_list[op] for op in opens), np.int64, len(opens)
        )
        policy = self.policy
        if policy.combined_length_rule:
            crit = self._crit_arr[ops]
            length = self._len_arr[ops]
            n = len(opens)
            # Boundary value of the descending upper half, as in
            # _sort_opens: values_desc[(n-1)//2].
            kth = n - 1 - (n - 1) // 2
            threshold = np.partition(crit, kth)[kth]
            key_len = np.where(crit >= threshold, length, -length)
            order = np.lexsort((ops, arrival, key_len, -crit))
        elif policy.use_criticality:
            order = np.lexsort((ops, arrival, -self._crit_arr[ops]))
        elif policy.use_length:
            order = np.lexsort((ops, arrival, -self._len_arr[ops]))
        else:
            order = np.lexsort((ops, arrival))
        return ops[order].tolist()

    def _record_failure(self, op: int, time: int, adaptive: bool) -> None:
        """The failure branch of ``_try_open``, minus the search.

        Runs for ops the prefilter proved blocked; must stay
        bit-identical to the bookkeeping in
        :meth:`BraidSimulator._try_open`.
        """
        if self._fail_epoch[op] == self.mesh.epoch:
            self._fail_adaptive[op] |= adaptive
        else:
            self._fail_epoch[op] = self.mesh.epoch
            self._fail_adaptive[op] = adaptive
        config = self.config
        if time - self._wait_start[op] >= config.drop_timeout:
            self._drops += 1
            self._wait_start[op] = time
            self._arrival[op] = next(self._arrival_counter)
        if not adaptive:
            self._schedule_event(
                self._wait_start[op] + config.adaptive_timeout, _WAKE, -1
            )

    def _bank_all_blocked(self, ops: list[int], occ):
        """Per op: True when *every* adaptive candidate hits ``occ``.

        ``ops`` are braid ops whose DOR row is blocked and whose
        candidate set is the full alternative list of their current
        segment; rows are gathered from the shared bank in one fancy
        index with a segmented all-reduction.
        """
        m = len(ops)
        starts = np.empty(m, dtype=np.int64)
        counts = np.empty(m, dtype=np.int64)
        alt_start = self._alt_start
        alt_count = self._alt_count
        alt_seg = self._alt_seg
        seg_index = self._segment_index
        vec = self._vec
        for j, op in enumerate(ops):
            si = seg_index[op]
            if alt_seg[op] != si:
                seg = self._segments[op][si]
                start, count = vec.pair_span(seg[0], seg[1])
                alt_start[op] = start
                alt_count[op] = count
                alt_seg[op] = si
            starts[j] = alt_start[op]
            counts[j] = alt_count[op]
        total = int(counts.sum())
        group = np.cumsum(counts) - counts
        rows = (
            np.arange(total, dtype=np.int64)
            - np.repeat(group, counts)
            + np.repeat(starts, counts)
        )
        hit = (vec.bank_matrix()[rows] & occ).any(axis=1)
        # Alternatives lists are never empty (the DOR route is one of
        # them), so every reduceat segment is nonempty.
        return np.logical_and.reduceat(hit, group)

    def _classify_opens(self, ordered: list[int], time: int, occ,
                        use_memo: bool):
        """Prefilter: which queued opens are *guaranteed* to fail.

        ``occ`` is a lower bound on occupancy at every op's turn in the
        upcoming walk (claims only add links; every release of the
        round either already happened or was subtracted by the caller),
        so a candidate set fully blocked against ``occ`` stays blocked.
        ``use_memo`` additionally applies the epoch memo — only sound
        when the mesh epoch cannot change before the op's turn
        (close-first rounds, where all releases precede the open walk).
        """
        k = len(ordered)
        wait_start = self._wait_start
        timeout = self.config.adaptive_timeout
        adaptive = np.fromiter(
            (time - wait_start[op] >= timeout for op in ordered), bool, k
        )
        seg_index = self._segment_index
        seg_rows = self._vec.seg_rows
        dor_rows = np.stack(
            [seg_rows[op][seg_index[op]] for op in ordered]
        )
        dor_blocked = (dor_rows & occ).any(axis=1)
        if use_memo:
            epoch = self.mesh.epoch
            fail_epoch = self._fail_epoch
            fail_adaptive = self._fail_adaptive
            memo_fail = np.fromiter(
                (
                    fail_epoch[op] == epoch
                    and (fail_adaptive[op] or not a)
                    for op, a in zip(ordered, adaptive.tolist())
                ),
                bool,
                k,
            )
            definite_fail = memo_fail | (dor_blocked & ~adaptive)
            need_bank = dor_blocked & adaptive & ~memo_fail
        else:
            definite_fail = dor_blocked & ~adaptive
            need_bank = dor_blocked & adaptive
        if need_bank.any():
            idx = np.nonzero(need_bank)[0]
            definite_fail[idx] |= self._bank_all_blocked(
                [ordered[i] for i in idx.tolist()], occ
            )
        return definite_fail, adaptive

    # -- the issue fixpoint -------------------------------------------------

    def _issue_events(self, time: int) -> None:
        closes_first = self.policy.closes_first
        any_release_with_blocked = False
        while True:
            closes = self._closing
            if closes:
                closes.sort()
                self._closing = []
            progress = False
            released_any = False
            blocked_any = False
            # Open candidates come from the pre-close ready set, as in
            # the flat engine (closes completing ops this round ready
            # their successors for the *next* fixpoint round).
            opens = self._eligible_opens(time) if self._ready_opens else []
            k = len(opens)
            batched = k >= _BATCH_MIN
            if closes_first:
                if self._open_queue is not None:
                    # Scoreboard family: the word-packed ready bitset
                    # is the order (oldest program index first).
                    ordered = self._open_queue.ordered(self._ready_opens)
                elif batched:
                    ordered = self._ordered_opens_vec(opens)
                elif k > 1:
                    ordered = self._sort_opens(opens)
                else:
                    ordered = opens
                for op in closes:
                    self._close_segment(op, time)
                    released_any = True
                    progress = True
                if batched:
                    # Post-close occupancy only grows from here, and
                    # the epoch is fixed for the walk: memo + batched
                    # candidate tests give exact failure verdicts.
                    definite_fail, adaptive = self._classify_opens(
                        ordered,
                        time,
                        self._occ_words(self.mesh.occupied_mask),
                        use_memo=True,
                    )
                    for i, op in enumerate(ordered):
                        if definite_fail[i]:
                            self._record_failure(
                                op, time, bool(adaptive[i])
                            )
                            blocked_any = True
                        else:
                            opened = self._try_open(op, time)
                            progress |= opened
                            blocked_any |= not opened
                else:
                    for op in ordered:
                        opened = self._try_open(op, time)
                        progress |= opened
                        blocked_any |= not opened
            else:
                # Unprioritized: closes and opens interleave by program
                # order (a two-pointer merge of the two sorted lists;
                # an op is never both closing and opening).
                opens.sort()
                if batched:
                    # The epoch moves mid-walk here, so the prefilter
                    # tests against the round's occupancy *floor* —
                    # everything this round's closes will release,
                    # subtracted up front — and leaves the memo to the
                    # scalar path of the surviving opens.
                    release_mask = 0
                    for op in closes:
                        release_mask |= self.mesh.owner_mask(op)
                    definite_fail, adaptive = self._classify_opens(
                        opens,
                        time,
                        self._occ_words(
                            self.mesh.occupied_mask & ~release_mask
                        ),
                        use_memo=False,
                    )
                ci, num_closes = 0, len(closes)
                oi = 0
                while ci < num_closes or oi < k:
                    if oi >= k or (
                        ci < num_closes and closes[ci] < opens[oi]
                    ):
                        self._close_segment(closes[ci], time)
                        ci += 1
                        released_any = True
                        progress = True
                    elif batched and definite_fail[oi]:
                        self._record_failure(
                            opens[oi], time, bool(adaptive[oi])
                        )
                        oi += 1
                        blocked_any = True
                    else:
                        opened = self._try_open(opens[oi], time)
                        oi += 1
                        progress |= opened
                        blocked_any |= not opened
            any_release_with_blocked |= released_any and blocked_any
            if not progress or (
                not self._closing and not self._ready_opens
            ):
                break
        if any_release_with_blocked and self._ready_opens:
            self._schedule_event(time + 1, _WAKE, -1)
