"""Communication substrate: braid mesh simulation and EPR pipelining."""

from .braidsim import (
    BraidSimConfig,
    BraidSimResult,
    BraidSimulator,
    simulate_braids,
)
from .epr import (
    EprDemand,
    EprPipelineConfig,
    EprPipelineResult,
    demands_from_schedule,
    simulate_epr_pipeline,
)
from .events import BraidSegment, OpTask, build_tasks
from .mesh import BraidMesh, manhattan, path_links
from .policies import ALL_POLICIES, POLICIES, Policy
from .routing import alternative_paths, dor_path, find_free_path
from .teleport import DEFAULT_TELEPORT_MODEL, TeleportModel

__all__ = [
    "BraidMesh",
    "path_links",
    "manhattan",
    "dor_path",
    "alternative_paths",
    "find_free_path",
    "BraidSegment",
    "OpTask",
    "build_tasks",
    "Policy",
    "POLICIES",
    "ALL_POLICIES",
    "BraidSimConfig",
    "BraidSimResult",
    "BraidSimulator",
    "simulate_braids",
    "TeleportModel",
    "DEFAULT_TELEPORT_MODEL",
    "EprDemand",
    "EprPipelineConfig",
    "EprPipelineResult",
    "demands_from_schedule",
    "simulate_epr_pipeline",
]
