"""Communication substrate: braid mesh simulation and EPR pipelining."""

from ._braidsim_reference import (
    ReferenceBraidSimulator,
    simulate_braids_reference,
)
from .braidsim import (
    ENGINES,
    BraidSimConfig,
    BraidSimResult,
    BraidSimulator,
    engine_class,
    simulate_braids,
    simulate_plan,
)
from .epr import (
    EprDemand,
    EprPipelineConfig,
    EprPipelineResult,
    demands_from_schedule,
    simulate_epr_pipeline,
)
from .events import BraidSegment, OpTask, build_tasks
from .mesh import BraidMesh, manhattan, path_links
from .plan import BraidPlan, braid_plan, plan_memo_stats, reset_plan_memo
from .policies import ALL_POLICIES, POLICIES, Policy
from .policies_sched import (
    MatrixScoreboard,
    ReservationSchedule,
    ReservationTable,
    build_reservation,
    dependency_matrix,
    ii_lower_bound,
    reservation_schedule,
    scoreboard_matrix,
)
from .routing import (
    ROUTE_TABLE_CAPACITY,
    RouteTable,
    alternative_paths,
    dor_path,
    find_free_path,
    route_table,
    route_table_stats,
    set_route_table_capacity,
)
from .teleport import DEFAULT_TELEPORT_MODEL, TeleportModel

__all__ = [
    "BraidMesh",
    "path_links",
    "manhattan",
    "dor_path",
    "alternative_paths",
    "find_free_path",
    "BraidSegment",
    "OpTask",
    "build_tasks",
    "Policy",
    "POLICIES",
    "ALL_POLICIES",
    "MatrixScoreboard",
    "ReservationSchedule",
    "ReservationTable",
    "build_reservation",
    "dependency_matrix",
    "ii_lower_bound",
    "reservation_schedule",
    "scoreboard_matrix",
    "BraidSimConfig",
    "BraidSimResult",
    "BraidSimulator",
    "ENGINES",
    "engine_class",
    "BraidPlan",
    "braid_plan",
    "plan_memo_stats",
    "reset_plan_memo",
    "simulate_braids",
    "simulate_plan",
    "ReferenceBraidSimulator",
    "simulate_braids_reference",
    "RouteTable",
    "ROUTE_TABLE_CAPACITY",
    "route_table",
    "route_table_stats",
    "set_route_table_capacity",
    "TeleportModel",
    "DEFAULT_TELEPORT_MODEL",
    "EprDemand",
    "EprPipelineConfig",
    "EprPipelineResult",
    "demands_from_schedule",
    "simulate_epr_pipeline",
]
