"""Technology models for superconducting quantum hardware.

The paper's evaluation is parameterized by a small set of physical
technology characteristics (Section 5.1, Figure 4 "Technology
Characteristics" input): physical gate latencies, the physical error rate
``p_P``, and the surface-code threshold.  This module captures those
parameters in one immutable object so every downstream model (code
distance selection, braid timing, teleportation latency) draws from a
single source of truth.

Two presets bracket the paper's sweep in Figure 9:

* :data:`CURRENT` -- ``p_P = 1e-3``, today's superconducting devices
  (paper Section 2.2: reliabilities of 99.9--99.99%).
* :data:`OPTIMISTIC` -- ``p_P = 1e-8``, the "future optimistic" end used
  for Figures 7 and 8.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "Technology",
    "CURRENT",
    "INTERMEDIATE",
    "OPTIMISTIC",
    "technology_for_error_rate",
]


@dataclasses.dataclass(frozen=True)
class Technology:
    """Immutable description of a physical qubit technology.

    Attributes:
        name: Human-readable identifier for reports.
        physical_error_rate: Per-physical-operation error probability
            ``p_P``.  The paper sweeps this from ``1e-8`` to ``1e-3``.
        threshold_error_rate: Surface-code threshold ``p_th``; error
            suppression scales as ``(p_P / p_th) ** ((d + 1) / 2)``.
            The paper's cited value (Fowler et al.) is about 1e-2.
        cycle_time_ns: Duration of one surface-code error-correction
            cycle in nanoseconds.  One cycle comprises the syndrome
            measurement round (a few 2-qubit gate times plus measurement).
        gate_time_1q_ns: Latency of a physical single-qubit gate.
        gate_time_2q_ns: Latency of a physical two-qubit gate.  Figure 7's
            caption assumes single-qubit operations are 10x faster than
            two-qubit operations, which these defaults preserve.
        measure_time_ns: Latency of a physical measurement.
    """

    name: str = "superconducting"
    physical_error_rate: float = 1e-5
    threshold_error_rate: float = 1e-2
    cycle_time_ns: float = 400.0
    gate_time_1q_ns: float = 5.0
    gate_time_2q_ns: float = 50.0
    measure_time_ns: float = 140.0

    def __post_init__(self) -> None:
        if not 0.0 < self.physical_error_rate < 1.0:
            raise ValueError(
                f"physical_error_rate must be in (0, 1), got "
                f"{self.physical_error_rate!r}"
            )
        if not 0.0 < self.threshold_error_rate < 1.0:
            raise ValueError(
                f"threshold_error_rate must be in (0, 1), got "
                f"{self.threshold_error_rate!r}"
            )
        if self.physical_error_rate >= self.threshold_error_rate:
            raise ValueError(
                "physical error rate must be below threshold for the "
                f"surface code to help: p_P={self.physical_error_rate} "
                f">= p_th={self.threshold_error_rate}"
            )
        for field in (
            "cycle_time_ns",
            "gate_time_1q_ns",
            "gate_time_2q_ns",
            "measure_time_ns",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    @property
    def error_suppression_base(self) -> float:
        """Ratio ``p_P / p_th`` governing per-distance error suppression."""
        return self.physical_error_rate / self.threshold_error_rate

    def with_error_rate(self, physical_error_rate: float) -> "Technology":
        """Return a copy of this technology at a different ``p_P``."""
        return dataclasses.replace(
            self,
            name=f"{self.name}(pP={physical_error_rate:g})",
            physical_error_rate=physical_error_rate,
        )

    def seconds(self, cycles: float) -> float:
        """Convert a count of surface-code cycles to wall-clock seconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles * self.cycle_time_ns * 1e-9


CURRENT = Technology(name="superconducting-2017", physical_error_rate=1e-3)
INTERMEDIATE = Technology(name="superconducting-mid", physical_error_rate=1e-5)
OPTIMISTIC = Technology(name="superconducting-future", physical_error_rate=1e-8)


def technology_for_error_rate(physical_error_rate: float) -> Technology:
    """Build a default technology preset at the given ``p_P``.

    Used by the Figure 9 sensitivity sweep, which varies only the error
    rate while holding gate latencies fixed.
    """
    return Technology(
        name=f"superconducting(pP={physical_error_rate:g})",
        physical_error_rate=physical_error_rate,
    )
