"""Lowering composite gates to the fault-tolerant Clifford+T set.

Surface codes natively implement Clifford operations and, via magic-state
injection, T gates (Section 2.2).  Everything else must be decomposed
before backend mapping:

* ``TOFFOLI`` -> the standard 7-T, 6-CNOT network (Nielsen & Chuang
  Fig. 4.9), the decomposition ScaffCC emits.
* ``FREDKIN`` -> CNOT-conjugated Toffoli.
* ``RZ(theta)`` -> a Clifford+T approximation sequence.  We model the
  Ross--Selinger/gridsynth result: approximating to precision ``eps``
  costs about ``3 * log2(1 / eps)`` T gates.  The emitted sequence is a
  deterministic pseudo-random H/T/S word with exactly that T-count, which
  preserves the resource footprint (T-count, depth, qubit locality) that
  the paper's evaluation depends on without carrying a unitary synthesizer.
"""

from __future__ import annotations

import functools
import math
from typing import Sequence

from ..qasm.circuit import Circuit, Operation

__all__ = ["DecomposeConfig", "decompose_circuit", "rz_t_count"]

DEFAULT_RZ_PRECISION = 1e-10


class DecomposeConfig:
    """Parameters of the lowering pass.

    Attributes:
        rz_precision: Target approximation error per RZ rotation.  The
            frontend picks this to keep synthesis error comfortably below
            the QEC logical error budget.
    """

    def __init__(self, rz_precision: float = DEFAULT_RZ_PRECISION) -> None:
        if not 0 < rz_precision < 1:
            raise ValueError(
                f"rz_precision must be in (0, 1), got {rz_precision}"
            )
        self.rz_precision = rz_precision


def rz_t_count(precision: float) -> int:
    """T-count of a single-qubit RZ approximation at the given precision.

    Uses the gridsynth scaling ``~ 3 * log2(1 / eps)`` (Ross & Selinger
    2014), the standard estimate in resource studies.
    """
    if not 0 < precision < 1:
        raise ValueError(f"precision must be in (0, 1), got {precision}")
    return max(1, math.ceil(3 * math.log2(1.0 / precision)))


def decompose_circuit(
    circuit: Circuit, config: DecomposeConfig | None = None
) -> Circuit:
    """Return an equivalent circuit containing only Clifford+T gates.

    Fences are preserved at their original positions (remapped to the
    expanded operation indices).

    The expansion streams into one flat operation list — non-composite
    operations pass through untouched, composite ones extend by their
    (memoized) expansion tuples — and the output circuit adopts the
    list via the trusted bulk constructor.  Lowering never introduces
    new qubits, so the per-operation implicit registration of
    ``Circuit.append`` is pure overhead on circuits of this size.
    """
    config = config or DecomposeConfig()
    ops: list[Operation] = []
    append = ops.append
    extend = ops.extend
    out_fences: list[tuple[int, tuple[str, ...]]] = []
    fences = sorted(circuit.fences)
    num_fences = len(fences)
    fence_cursor = 0
    for index, op in enumerate(circuit):
        while fence_cursor < num_fences and fences[fence_cursor][0] <= index:
            out_fences.append((len(ops), fences[fence_cursor][1]))
            fence_cursor += 1
        if op.spec.is_composite:
            extend(_lower(op, config))
        else:
            append(op)
    while fence_cursor < num_fences:
        out_fences.append((len(ops), fences[fence_cursor][1]))
        fence_cursor += 1
    return Circuit.from_operations(
        circuit.name, circuit.qubits, ops, out_fences
    )


def _lower(op: Operation, config: DecomposeConfig) -> Sequence[Operation]:
    """Expansion of one composite operation (callers check the kind)."""
    if op.gate == "TOFFOLI":
        return _toffoli(*op.qubits)
    if op.gate == "FREDKIN":
        return _fredkin(*op.qubits)
    if op.gate == "RZ":
        assert op.param is not None
        return _rz(op.qubits[0], op.param, config.rz_precision)
    raise NotImplementedError(f"no decomposition for {op.gate}")


# The expansion helpers are memoized: large circuits apply the same
# composite to the same operand tuple thousands of times (SHA-1's round
# function alone), and Operation is frozen, so the expansions can be
# shared structurally.  They return tuples -- callers must not mutate.


@functools.lru_cache(maxsize=65536)
def _toffoli(c1: str, c2: str, target: str) -> tuple[Operation, ...]:
    """Standard 7-T Toffoli (controls c1, c2; target t)."""
    seq = [
        ("H", (target,)),
        ("CNOT", (c2, target)),
        ("TDG", (target,)),
        ("CNOT", (c1, target)),
        ("T", (target,)),
        ("CNOT", (c2, target)),
        ("TDG", (target,)),
        ("CNOT", (c1, target)),
        ("T", (c2,)),
        ("T", (target,)),
        ("H", (target,)),
        ("CNOT", (c1, c2)),
        ("T", (c1,)),
        ("TDG", (c2,)),
        ("CNOT", (c1, c2)),
    ]
    return tuple(Operation(gate, qubits) for gate, qubits in seq)


@functools.lru_cache(maxsize=16384)
def _fredkin(control: str, a: str, b: str) -> tuple[Operation, ...]:
    """Controlled-swap as CNOT-conjugated Toffoli."""
    conjugate = Operation("CNOT", (b, a))
    return (conjugate,) + _toffoli(control, a, b) + (conjugate,)


@functools.lru_cache(maxsize=65536)
def _rz(qubit: str, angle: float, precision: float) -> tuple[Operation, ...]:
    """Deterministic Clifford+T word with the gridsynth T-count.

    Angles that are exact multiples of pi/4 are synthesized exactly from
    S/Z/T gates (these dominate Trotterized chemistry circuits after
    angle folding); generic angles get the approximation word.
    """
    tau = angle % (2 * math.pi)
    eighth_turns = tau / (math.pi / 4)
    nearest = round(eighth_turns)
    if abs(eighth_turns - nearest) < 1e-12:
        return _exact_eighth_turn(qubit, nearest % 8)
    t_count = rz_t_count(precision)
    # Deterministic H (T|TDG) pattern keyed on the angle so equal angles
    # produce equal words; alternation avoids merging adjacent T gates.
    word: list[Operation] = []
    state = int(abs(math.floor(angle * 1e9))) or 1
    for _ in range(t_count):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        word.append(Operation("H", (qubit,)))
        word.append(Operation("T" if state & (1 << 32) else "TDG", (qubit,)))
    word.append(Operation("H", (qubit,)))
    return tuple(word)


def _exact_eighth_turn(qubit: str, eighths: int) -> tuple[Operation, ...]:
    """Exact synthesis of RZ(k * pi/4) from {Z, S, SDG, T, TDG}."""
    table: dict[int, list[str]] = {
        0: [],
        1: ["T"],
        2: ["S"],
        3: ["S", "T"],
        4: ["Z"],
        5: ["Z", "T"],
        6: ["SDG"],
        7: ["TDG"],
    }
    return tuple(Operation(gate, (qubit,)) for gate in table[eighths])
