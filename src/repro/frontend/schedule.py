"""Logical-level scheduling (Figure 4: "Logical Schedule").

Produces cycle-by-cycle schedules of logical operations before any
error-correction or communication costs are applied:

* :func:`asap_schedule` / :func:`alap_schedule` -- unconstrained
  dependence-limited schedules.
* :func:`list_schedule` -- resource-constrained list scheduling with a
  per-cycle issue width (the number of SIMD regions in the Multi-SIMD
  architecture) and a priority heuristic.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Callable, Optional

from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag

__all__ = ["LogicalSchedule", "asap_schedule", "alap_schedule", "list_schedule"]


@dataclasses.dataclass(frozen=True)
class LogicalSchedule:
    """A logical schedule: operation indices grouped per cycle.

    Attributes:
        circuit: The scheduled circuit.
        cycles: ``cycles[t]`` lists operation indices issued at cycle t.
    """

    circuit: Circuit
    cycles: tuple[tuple[int, ...], ...]

    @property
    def length(self) -> int:
        """Total schedule length in logical cycles."""
        return len(self.cycles)

    @property
    def num_operations(self) -> int:
        return sum(len(cycle) for cycle in self.cycles)

    @property
    def width(self) -> int:
        """Maximum operations issued in any single cycle."""
        return max((len(cycle) for cycle in self.cycles), default=0)

    @property
    def mean_concurrency(self) -> float:
        """Average issued operations per non-empty cycle."""
        if not self.cycles:
            return 0.0
        return self.num_operations / self.length

    def start_cycle(self, op_index: int) -> int:
        for t, cycle in enumerate(self.cycles):
            if op_index in cycle:
                return t
        raise KeyError(f"operation {op_index} not in schedule")

    def validate(self, dag: Optional[CircuitDag] = None) -> None:
        """Assert the schedule is a dependence-respecting partition."""
        dag = dag or CircuitDag(self.circuit)
        start: dict[int, int] = {}
        for t, cycle in enumerate(self.cycles):
            for op in cycle:
                if op in start:
                    raise AssertionError(f"operation {op} scheduled twice")
                start[op] = t
        if len(start) != len(self.circuit):
            raise AssertionError(
                f"schedule covers {len(start)} of {len(self.circuit)} ops"
            )
        for op, t in start.items():
            for pred in dag.predecessors(op):
                if start[pred] >= t:
                    raise AssertionError(
                        f"dependence violated: {pred} (cycle {start[pred]}) "
                        f"must precede {op} (cycle {t})"
                    )


def asap_schedule(circuit: Circuit, dag: Optional[CircuitDag] = None) -> LogicalSchedule:
    """As-soon-as-possible schedule (unbounded issue width)."""
    dag = dag or CircuitDag(circuit)
    return LogicalSchedule(
        circuit, tuple(tuple(level) for level in dag.asap_levels())
    )


def alap_schedule(circuit: Circuit, dag: Optional[CircuitDag] = None) -> LogicalSchedule:
    """As-late-as-possible schedule (unbounded issue width)."""
    dag = dag or CircuitDag(circuit)
    levels: dict[int, list[int]] = {}
    for index in range(dag.num_nodes):
        levels.setdefault(dag.alap_level(index), []).append(index)
    return LogicalSchedule(
        circuit, tuple(tuple(levels[k]) for k in sorted(levels))
    )


def list_schedule(
    circuit: Circuit,
    issue_width: int,
    dag: Optional[CircuitDag] = None,
    priority: Optional[Callable[[int], float]] = None,
) -> LogicalSchedule:
    """Priority list scheduling with a bounded per-cycle issue width.

    Args:
        circuit: Circuit to schedule.
        issue_width: Maximum operations per cycle (e.g. number of SIMD
            regions).  Must be >= 1.
        dag: Optional pre-built dependence DAG.
        priority: Ready-op ranking; *higher* values issue first.  Defaults
            to criticality (transitive descendant count), the classic
            longest-path-first heuristic.

    Returns:
        A :class:`LogicalSchedule` no shorter than the critical path and
        no longer than ``ceil(ops / issue_width) + critical_path``.
    """
    if issue_width < 1:
        raise ValueError(f"issue_width must be >= 1, got {issue_width}")
    dag = dag or CircuitDag(circuit)
    if priority is None:
        priority = dag.criticality
    remaining_preds = [dag.in_degree(i) for i in range(dag.num_nodes)]
    # Heap of (-priority, index) for deterministic highest-priority-first.
    ready = [(-priority(i), i) for i in dag.sources()]
    heapq.heapify(ready)
    cycles: list[tuple[int, ...]] = []
    scheduled = 0
    while scheduled < dag.num_nodes:
        issued: list[int] = []
        while ready and len(issued) < issue_width:
            _, op = heapq.heappop(ready)
            issued.append(op)
        if not issued:
            raise RuntimeError("no ready operations but work remains")
        for op in issued:
            for succ in dag.successors(op):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    heapq.heappush(ready, (-priority(succ), succ))
        cycles.append(tuple(issued))
        scheduled += len(issued)
    return LogicalSchedule(circuit, tuple(cycles))
