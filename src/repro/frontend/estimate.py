"""Logical-level resource and parallelism estimation (Figure 4, frontend).

The frontend's estimates drive two backend decisions (Section 5.3):

* The **size of computation** (total logical operations K) sets the
  target logical error rate: pL = budget / K for a 50% overall success
  target.
* The **parallelism factor** guides the network optimization policy and
  the planar-vs-double-defect comparison.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional

from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qasm.gates import GateKind, gate_spec

__all__ = [
    "LogicalEstimate",
    "estimate_circuit",
    "flat_critical_path",
    "target_logical_error_rate",
]

SUCCESS_TARGET = 0.5
"""Paper Section 2.2: "50% is a typical correctness target"."""


def target_logical_error_rate(
    total_operations: int, success_target: float = SUCCESS_TARGET
) -> float:
    """Per-operation logical error budget for a computation of K ops.

    An application executing K logical operations succeeds with
    probability ``(1 - pL)^K >= success_target`` when
    ``pL <= (1 - success_target) / K`` (first-order union bound, the
    paper's "errors must not exceed 0.5e-12 for 1e12 operations").
    """
    if total_operations < 1:
        raise ValueError(
            f"total_operations must be >= 1, got {total_operations}"
        )
    if not 0 < success_target < 1:
        raise ValueError(
            f"success_target must be in (0, 1), got {success_target}"
        )
    return (1.0 - success_target) / total_operations


@dataclasses.dataclass(frozen=True)
class LogicalEstimate:
    """Frontend summary of one application circuit.

    Attributes:
        name: Circuit name.
        num_qubits: Logical data qubits used by the program.
        total_operations: K, the size of computation (pre-QEC logical ops).
        t_count: Magic-state-consuming operations (T/Tdg).
        two_qubit_count: Operations requiring qubit-pair interaction.
        measurement_count: Readout operations.
        critical_path: Dependence-limited depth in logical cycles.
        parallelism_factor: Table 2's ideal concurrency (K / depth).
        gate_histogram: Mnemonic -> count.
        target_pl: Logical error budget per operation.
    """

    name: str
    num_qubits: int
    total_operations: int
    t_count: int
    two_qubit_count: int
    measurement_count: int
    critical_path: int
    parallelism_factor: float
    gate_histogram: dict[str, int]
    target_pl: float

    @property
    def computation_size(self) -> float:
        """1 / pL, the x-axis of Figures 7 and 8."""
        return 1.0 / self.target_pl

    @property
    def t_fraction(self) -> float:
        """Fraction of operations that consume a magic state."""
        if self.total_operations == 0:
            return 0.0
        return self.t_count / self.total_operations

    @property
    def communication_fraction(self) -> float:
        """Fraction of operations that require qubit-pair communication.

        Every 2-qubit gate is a braid (tiled) or teleport (Multi-SIMD),
        and every T consumes a magic state delivered over the network, so
        both count toward communication pressure.
        """
        if self.total_operations == 0:
            return 0.0
        return (self.two_qubit_count + self.t_count) / self.total_operations

    def summary_row(self) -> str:
        """One formatted row for Table 2-style reports."""
        return (
            f"{self.name:<16} {self.num_qubits:>7} {self.total_operations:>10} "
            f"{self.t_count:>8} {self.critical_path:>10} "
            f"{self.parallelism_factor:>11.1f}"
        )


def flat_critical_path(circuit: Circuit) -> int:
    """Unit-latency critical-path length without building a full DAG.

    Streams the circuit once, tracking each qubit's last finish level
    (plus fence-injected floors), and returns the maximum finish time.
    This reproduces :attr:`CircuitDag.critical_path_length` exactly for
    the default unit latency -- the DAG's ASAP recurrence only ever
    consumes the *maximum* over a node's predecessors, so per-qubit
    running maxima suffice -- at a fraction of the edge-building cost.
    Calibration fits use it to estimate circuits they never simulate.
    """
    finish: dict[str, int] = {}
    fence_floor: dict[str, int] = {}
    fences = sorted(circuit.fences)
    num_fences = len(fences)
    cursor = 0
    depth = 0
    for index, op in enumerate(circuit):
        while cursor < num_fences and fences[cursor][0] <= index:
            _, fenced_qubits = fences[cursor]
            barrier = 0
            for q in fenced_qubits:
                level = finish.get(q, 0)
                if level > barrier:
                    barrier = level
            if barrier:
                for q in fenced_qubits:
                    if barrier > fence_floor.get(q, 0):
                        fence_floor[q] = barrier
            cursor += 1
        start = 0
        for q in op.qubits:
            level = finish.get(q, 0)
            if level > start:
                start = level
            if fence_floor:
                floor = fence_floor.pop(q, 0)
                if floor > start:
                    start = floor
        end = start + 1
        if end > depth:
            depth = end
        for q in op.qubits:
            finish[q] = end
    return depth


def estimate_circuit(
    circuit: Circuit,
    dag: Optional[CircuitDag] = None,
    success_target: float = SUCCESS_TARGET,
) -> LogicalEstimate:
    """Compute the frontend estimate for a flat circuit.

    When a prebuilt ``dag`` is supplied its critical path is reused;
    otherwise the path comes from :func:`flat_critical_path`, which
    avoids constructing a :class:`CircuitDag` just for one number.
    """
    histogram = Counter(op.gate for op in circuit)
    total = len(circuit)
    # Gate arity/kind are per-mnemonic (Operation validates arity ==
    # spec.arity), so the counts fold out of the histogram with one
    # spec lookup per distinct gate instead of one per operation.
    t_count = 0
    two_qubit_count = 0
    measurement_count = 0
    for gate, count in histogram.items():
        spec = gate_spec(gate)
        if spec.consumes_magic_state:
            t_count += count
        if spec.arity == 2:
            two_qubit_count += count
        if spec.kind is GateKind.MEASUREMENT:
            measurement_count += count
    critical_path = (
        dag.critical_path_length if dag is not None
        else flat_critical_path(circuit)
    )
    return LogicalEstimate(
        name=circuit.name,
        num_qubits=circuit.num_qubits,
        total_operations=total,
        t_count=t_count,
        two_qubit_count=two_qubit_count,
        measurement_count=measurement_count,
        critical_path=critical_path,
        parallelism_factor=total / max(critical_path, 1) if total else 0.0,
        gate_histogram=dict(histogram),
        target_pl=target_logical_error_rate(max(total, 1), success_target),
    )
