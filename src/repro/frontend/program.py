"""Hierarchical program representation: modules and calls.

ScaffCC programs are hierarchical (C-like functions over qubit arrays);
the frontend's "Module Flattening" stage (Figure 4) inlines them into
flat QASM.  The *degree* of inlining matters: Section 7.3 evaluates the
IM application with medium and maximal inlining, because "more code
inlining creates more parallelism."

A :class:`Program` is a set of named :class:`Module` bodies, each a list
of operations and :class:`Call` sites.  :func:`repro.frontend.flatten`
expands programs to circuits.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Union

from ..qasm.circuit import Operation

__all__ = ["Call", "Module", "Program"]


@dataclasses.dataclass(frozen=True)
class Call:
    """A call site: invoke ``callee`` binding ``arguments`` to its formals."""

    callee: str
    arguments: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.callee:
            raise ValueError("callee name must be non-empty")
        if len(set(self.arguments)) != len(self.arguments):
            raise ValueError(
                f"call to {self.callee} has duplicate arguments: "
                f"{self.arguments}"
            )


Statement = Union[Operation, Call]


class Module:
    """A named subroutine over formal qubit parameters and locals.

    Attributes:
        name: Module identifier.
        parameters: Formal qubit parameter names.
        locals_: Qubits private to each invocation (fresh per call).
    """

    def __init__(
        self,
        name: str,
        parameters: Iterable[str] = (),
        locals_: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.parameters = list(dict.fromkeys(parameters))
        self.locals_ = list(dict.fromkeys(locals_))
        overlap = set(self.parameters) & set(self.locals_)
        if overlap:
            raise ValueError(
                f"module {name}: names {sorted(overlap)} are both "
                "parameters and locals"
            )
        self.body: list[Statement] = []
        # Declarations are fixed at construction; the frozen lookup set
        # makes the per-statement operand checks O(1) instead of
        # rebuilding a set per operand (module builders apply tens of
        # thousands of gates on the larger workloads).
        self._declared = frozenset(self.parameters) | frozenset(self.locals_)

    @property
    def declared_names(self) -> set[str]:
        return set(self._declared)

    def apply(self, gate: str, *qubits: str, param: float | None = None) -> None:
        """Append a gate, checking operands are declared."""
        self._check_names(qubits)
        self.body.append(Operation(gate, tuple(qubits), param))

    def call(self, callee: str, *arguments: str) -> None:
        """Append a call site."""
        self._check_names(arguments)
        self.body.append(Call(callee, tuple(arguments)))

    def _check_names(self, names: Iterable[str]) -> None:
        declared = self._declared
        unknown = [n for n in names if n not in declared]
        if unknown:
            raise ValueError(
                f"module {self.name}: undeclared qubit(s) {unknown}; "
                f"declared: {sorted(declared)}"
            )

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, params={len(self.parameters)}, "
            f"locals={len(self.locals_)}, statements={len(self.body)})"
        )


class Program:
    """A closed set of modules with a designated entry point."""

    def __init__(self, entry: str = "main") -> None:
        self.entry = entry
        self.modules: dict[str, Module] = {}

    def add(self, module: Module) -> Module:
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        return module

    def module(
        self,
        name: str,
        parameters: Iterable[str] = (),
        locals_: Iterable[str] = (),
    ) -> Module:
        """Create, register, and return a new module."""
        return self.add(Module(name, parameters, locals_))

    def validate(self) -> None:
        """Check entry exists, all callees resolve, arities match, and the
        call graph is acyclic (no recursion -- QC programs are fully
        unrolled, Section 4.2's "execution trace is known in advance")."""
        if self.entry not in self.modules:
            raise ValueError(f"entry module {self.entry!r} not defined")
        for module in self.modules.values():
            for statement in module.body:
                if isinstance(statement, Call):
                    callee = self.modules.get(statement.callee)
                    if callee is None:
                        raise ValueError(
                            f"module {module.name} calls undefined "
                            f"{statement.callee!r}"
                        )
                    if len(statement.arguments) != len(callee.parameters):
                        raise ValueError(
                            f"call {module.name} -> {statement.callee}: "
                            f"expected {len(callee.parameters)} args, got "
                            f"{len(statement.arguments)}"
                        )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.modules}
        stack: list[tuple[str, int]] = [(self.entry, 0)]
        callees = {
            name: [
                s.callee for s in module.body if isinstance(s, Call)
            ]
            for name, module in self.modules.items()
        }
        color[self.entry] = GREY
        while stack:
            name, cursor = stack.pop()
            if cursor < len(callees[name]):
                stack.append((name, cursor + 1))
                child = callees[name][cursor]
                if color[child] == GREY:
                    raise ValueError(
                        f"recursive call cycle through {child!r}; quantum "
                        "programs must be fully unrollable"
                    )
                if color[child] == WHITE:
                    color[child] = GREY
                    stack.append((child, 0))
            else:
                color[name] = BLACK

    def call_depth(self) -> int:
        """Maximum call-chain depth below the entry module."""
        self.validate()
        depth_cache: dict[str, int] = {}

        def depth(name: str) -> int:
            if name in depth_cache:
                return depth_cache[name]
            child_depths = [
                depth(s.callee)
                for s in self.modules[name].body
                if isinstance(s, Call)
            ]
            result = 1 + max(child_depths, default=-1) + (0 if child_depths else 0)
            depth_cache[name] = max(result, 0)
            return depth_cache[name]

        return depth(self.entry)

    def __repr__(self) -> str:
        return f"Program(entry={self.entry!r}, modules={len(self.modules)})"
