"""Compilation frontend: decomposition, flattening, scheduling, estimation.

This subpackage stands in for ScaffCC [40] in the paper's toolflow
(Figure 4, "Compilation Frontend"): it lowers hierarchical quantum
programs to flat Clifford+T QASM and produces the logical-level resource
and parallelism estimates that guide the backend.
"""

from .decompose import DecomposeConfig, decompose_circuit, rz_t_count
from .estimate import (
    LogicalEstimate,
    estimate_circuit,
    target_logical_error_rate,
)
from .flatten import flatten
from .program import Call, Module, Program
from .schedule import (
    LogicalSchedule,
    alap_schedule,
    asap_schedule,
    list_schedule,
)

__all__ = [
    "DecomposeConfig",
    "decompose_circuit",
    "rz_t_count",
    "Call",
    "Module",
    "Program",
    "flatten",
    "LogicalSchedule",
    "asap_schedule",
    "alap_schedule",
    "list_schedule",
    "LogicalEstimate",
    "estimate_circuit",
    "target_logical_error_rate",
]
