"""Module flattening (inlining) with controllable depth.

Flattening expands the hierarchical :class:`~repro.frontend.program.Program`
into a flat :class:`~repro.qasm.Circuit`.  Every call is always expanded
(the backend needs flat QASM), but the *inline depth* controls whether a
call boundary is transparent to the scheduler:

* Calls at depth < ``inline_depth`` are inlined transparently -- their
  operations interleave freely with the caller's.
* Deeper calls are expanded behind *fences* on the callee's footprint,
  which serialize the call against other work on those qubits exactly
  like an un-inlined opaque subroutine would.

This reproduces the paper's semi- vs fully-inlined distinction
(Section 7.3 / Figure 9): "more code inlining creates more parallelism."
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..qasm.circuit import Circuit
from .program import Call, Program

__all__ = ["flatten"]


def flatten(
    program: Program,
    inline_depth: Optional[int] = None,
    name: Optional[str] = None,
) -> Circuit:
    """Expand ``program`` into a flat circuit.

    Args:
        program: The hierarchical program; validated before expansion.
        inline_depth: Number of call levels inlined transparently.
            ``None`` (default) inlines everything (maximal inlining).
            ``0`` fences every call made by the entry module.
        name: Circuit name; defaults to the entry module name.

    Returns:
        A flat circuit whose qubits are the entry module's declared names
        plus uniquified locals from expanded callees.
    """
    program.validate()
    if inline_depth is not None and inline_depth < 0:
        raise ValueError(f"inline_depth must be >= 0, got {inline_depth}")
    entry = program.modules[program.entry]
    circuit = Circuit(name or entry.name)
    for qubit in entry.parameters + entry.locals_:
        circuit.add_qubit(qubit)
    counter = itertools.count()
    binding = {q: q for q in entry.declared_names}
    _expand(program, entry.name, binding, circuit, 0, inline_depth, counter)
    return circuit


def _expand(
    program: Program,
    module_name: str,
    binding: dict[str, str],
    circuit: Circuit,
    depth: int,
    inline_depth: Optional[int],
    counter: itertools.count,
) -> list[str]:
    """Expand one module invocation; returns the physical footprint."""
    module = program.modules[module_name]
    footprint = [binding[q] for q in module.parameters]
    for local in module.locals_:
        if depth == 0:
            # Entry-module locals keep their names (they are the
            # program's data qubits); callee locals are fresh per call.
            unique = local
        else:
            # '.' separators keep generated names QASM-safe ('#' would
            # collide with flat-QASM comments).
            unique = f"{module_name}.{local}.{next(counter)}"
        binding[local] = unique
        circuit.add_qubit(unique)
        footprint.append(unique)
    for statement in module.body:
        if isinstance(statement, Call):
            child_binding = dict(
                zip(
                    program.modules[statement.callee].parameters,
                    (binding[a] for a in statement.arguments),
                )
            )
            opaque = inline_depth is not None and depth >= inline_depth
            if opaque:
                # Fence on the callee's argument footprint before and
                # after: the call behaves as one indivisible block.
                pre_footprint = [binding[a] for a in statement.arguments]
                circuit.add_fence(pre_footprint)
                child_footprint = _expand(
                    program,
                    statement.callee,
                    child_binding,
                    circuit,
                    depth + 1,
                    inline_depth,
                    counter,
                )
                circuit.add_fence(child_footprint)
            else:
                child_footprint = _expand(
                    program,
                    statement.callee,
                    child_binding,
                    circuit,
                    depth + 1,
                    inline_depth,
                    counter,
                )
            footprint.extend(
                q for q in child_footprint if q not in footprint
            )
        else:
            circuit.append(statement.renamed(binding))
    return footprint
