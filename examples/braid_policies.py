"""Braid scheduling policy exploration (the Figure 6 experiment).

Sweeps all seven prioritization policies on a workload of your choice
and prints schedule-length-to-critical-path ratios and mesh
utilization -- the two metrics of Figure 6.

Run:  python examples/braid_policies.py [app] [size]
      (defaults: im 12)
"""

import sys

from repro.apps import build_circuit
from repro.arch import build_tiled_machine
from repro.frontend import decompose_circuit
from repro.network import POLICIES
from repro.qasm import CircuitDag


def main(app: str = "im", size: int = 12, distance: int = 5) -> None:
    print(f"building {app}[{size}] ...")
    circuit = decompose_circuit(build_circuit(app, size))
    dag = CircuitDag(circuit)
    print(
        f"{len(circuit)} operations on {circuit.num_qubits} logical qubits; "
        f"ideal parallelism {dag.parallelism_factor:.1f}"
    )
    header = (
        f"{'policy':<8} {'sched/CP':>9} {'util%':>7} {'drops':>7} "
        f"{'adaptive':>9}  description"
    )
    print(header)
    print("-" * (len(header) + 30))
    for number, policy in POLICIES.items():
        machine = build_tiled_machine(
            circuit, optimize_layout=policy.optimized_layout
        )
        result = machine.simulate(policy, distance, dag=dag)
        print(
            f"{policy.name:<8} {result.schedule_to_critical_ratio:>9.2f} "
            f"{result.mean_utilization * 100:>7.1f} {result.drops:>7} "
            f"{result.adaptive_routes:>9}  {policy.description}"
        )


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "im"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    main(app, size)
