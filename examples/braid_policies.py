"""Braid scheduling policy exploration (the Figure 6 experiment).

Sweeps the paper's seven prioritization policies plus the two
classical-scheduler families (7 reservation-table, 8 matrix-scoreboard)
on a workload of your choice through the staged
:class:`repro.runner.SweepRunner`: the frontend is compiled once and
shared by every policy (see the cache statistics the run prints), and
results persist to an on-disk cache so re-runs are instant.

Run:  python examples/braid_policies.py [app] [size] [cache_dir]
      (defaults: im 12, no disk cache)
"""

import sys

from repro.network import POLICIES
from repro.runner import GridSpec, SweepRunner


def main(app: str = "im", size: int = 12, cache_dir: str | None = None) -> None:
    print(f"sweeping {app}[{size}] over policies 0-8 ...")
    grid = GridSpec(
        apps=(app,),
        sizes={app: size},
        policies=tuple(range(9)),
        distance=5,
    )
    runner = SweepRunner(cache_dir=cache_dir)
    sweep = runner.run(grid)

    first = sweep.points[0]
    print(
        f"{first.logical.total_operations} operations on "
        f"{first.logical.num_qubits} logical qubits; "
        f"ideal parallelism {first.logical.parallelism_factor:.1f}"
    )
    header = (
        f"{'policy':<8} {'sched/CP':>9} {'util%':>7} {'drops':>7} "
        f"{'adaptive':>9}  description"
    )
    print(header)
    print("-" * (len(header) + 30))
    for point in sweep.points:
        policy = POLICIES[point.spec.policy]
        result = point.braid
        print(
            f"{policy.name:<8} {result.schedule_to_critical_ratio:>9.2f} "
            f"{result.mean_utilization * 100:>7.1f} {result.drops:>7} "
            f"{result.adaptive_routes:>9}  {policy.description}"
        )
    print(
        f"\nswept {len(sweep.points)} points in "
        f"{sweep.elapsed_seconds:.2f}s; cache: {sweep.stats.summary()}"
    )


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "im"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    cache_dir = sys.argv[3] if len(sys.argv) > 3 else None
    main(app, size, cache_dir)
