"""Worked walkthrough: define and run your own grid sweep.

The staged runner turns "run the pipeline at every combination of
these knobs" into three steps — declare a :class:`~repro.runner.GridSpec`,
hand it to a :class:`~repro.runner.SweepRunner`, read the
:class:`~repro.runner.SweepResult` — while the stage cache guarantees
that work shared between points (frontend compiles, layouts, scaling
fits) happens once.  This example builds a deliberately *mixed* grid:

* two applications with different per-app size lists,
* two braid policies (FIFO vs the paper's combined Policy 6),
* two physical error rates sweeping the technology axis.

That is 2 apps x sizes x 2 policies x 2 error rates = many points, but
watch the cache summary the run prints: each (app, size) frontend is
compiled exactly once, each app's scaling model is fitted once, and
braid simulations are shared across the error-rate axis (the braid
network is error-rate independent).

Run:  python examples/custom_sweep.py [cache_dir]

Passing a cache_dir persists results as JSON; a second run with the
same directory revives every point from disk and finishes near
instantly.  This is the same machinery behind ``python -m repro sweep``
and the Fig. 6 driver — see docs/ARCHITECTURE.md for the stage/key
flow and docs/PERFORMANCE.md for benchmarking a sweep.
"""

import sys

from repro.runner import GridSpec, SweepRunner


def build_grid() -> GridSpec:
    """A custom grid mixing per-app sizes, policies, and error rates."""
    return GridSpec(
        apps=("sq", "im"),
        # Per-app size knob: a single int or a sequence of sizes.
        # These stay at/below the Fig. 6 simulation sizes (sq 3, im 12)
        # so the walkthrough finishes in seconds; larger knobs grow the
        # braid simulation super-linearly.
        sizes={"sq": (2, 3), "im": 8},
        # Policy 5 (close-first FIFO) vs Policy 6 (combined rule).
        policies=(5, 6),
        # Sweep the technology axis: None keeps the preset's rate.
        error_rates=(None, 1e-4),
        tech_name="intermediate",
        distance=5,
    )


def main(cache_dir: str | None = None) -> None:
    grid = build_grid()
    specs = grid.expand()
    print(f"grid expands to {len(specs)} deduplicated points")

    runner = SweepRunner(cache_dir=cache_dir)
    sweep = runner.run(grid)

    header = (
        f"{'app':<5} {'size':>5} {'pol':>4} {'p_err':>8} "
        f"{'sched/CP':>9} {'planar qubits':>14} {'dd qubits':>10}"
    )
    print(header)
    print("-" * len(header))
    for point in sweep.points:
        spec = point.spec
        rate = spec.error_rate if spec.error_rate is not None else "preset"
        print(
            f"{spec.app:<5} {spec.size or '-':>5} {spec.policy:>4} "
            f"{rate!s:>8} {point.braid.schedule_to_critical_ratio:>9.2f} "
            f"{point.planar.physical_qubits:>14.3g} "
            f"{point.double_defect.physical_qubits:>10.3g}"
        )

    # The point of the staged runner: shared work happened once.
    print(
        f"\nswept {len(sweep.points)} points in "
        f"{sweep.elapsed_seconds:.2f}s with {sweep.workers} worker(s)"
    )
    print(f"cache: {sweep.stats.summary()}")
    if cache_dir:
        print(f"results persisted under {cache_dir}; re-run to see disk hits")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
