"""Planar vs double-defect crossover analysis (the Figure 8 experiment).

For a chosen application and physical error rate, sweeps computation
sizes, prints the normalized double-defect/planar resource ratios, and
locates the favorability crossover.

The simulator-backed calibration (braid congestion, EPR stalls) runs
through the staged runner cache: pass a cache directory and repeat
runs -- at any error rate -- skip the simulations entirely.

Run:  python examples/code_crossover.py [app] [pP] [cache_dir]
      (defaults: sq 1e-8, no disk cache)
"""

import sys

from repro.core import analyze_crossover, calibrate_app, format_fig8
from repro.runner import StageCache
from repro.tech import technology_for_error_rate


def main(
    app: str = "sq",
    error_rate: float = 1e-8,
    cache_dir: str | None = None,
) -> None:
    tech = technology_for_error_rate(error_rate)
    cache = StageCache(cache_dir)
    print(
        f"analyzing {app} at pP = {error_rate:g} "
        "(calibrating simulators on a small instance first)..."
    )
    calibration = calibrate_app(app, cache=cache)
    print(f"calibration cache: {cache.stats.summary()}")
    analysis = analyze_crossover(app, tech, calibration=calibration)
    print()
    print(format_fig8(analysis))
    if analysis.crossover_size is not None:
        print(
            f"\n=> use PLANAR below ~{analysis.crossover_size:.1e} logical "
            "operations, DOUBLE-DEFECT above."
        )
    else:
        print("\n=> planar codes favored across the entire swept range.")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "sq"
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 1e-8
    cache_dir = sys.argv[3] if len(sys.argv) > 3 else None
    main(app, rate, cache_dir)
