"""EPR look-ahead window tuning (the Section 8.1 experiment).

Shows the just-in-time distribution tradeoff: small windows starve
teleports (stalls), large windows flood the machine with idle EPR
pairs.  Prints the sweep and the recommended window.

Run:  python examples/epr_window_tuning.py [app] [size]
      (defaults: sq 3)
"""

import sys

from repro.apps import build_circuit
from repro.arch import build_multisimd_machine
from repro.frontend import decompose_circuit

WINDOWS = (1, 2, 4, 8, 16, 32, 64, 256, 1024, 10**9)


def main(app: str = "sq", size: int = 3, distance: int = 5) -> None:
    circuit = decompose_circuit(build_circuit(app, size))
    machine = build_multisimd_machine(circuit, regions=4)
    schedule = machine.schedule()
    print(
        f"{app}[{size}]: {len(circuit)} ops, logical schedule "
        f"{schedule.length} cycles"
    )
    header = (
        f"{'window':>10} {'peak EPR pairs':>15} {'EPR qubits':>11} "
        f"{'stalls':>8} {'overhead':>9}"
    )
    print(header)
    print("-" * len(header))
    best = None
    for window in WINDOWS:
        r = machine.epr_pipeline(schedule, distance, window=window)
        label = "inf" if window == 10**9 else str(window)
        print(
            f"{label:>10} {r.peak_epr_pairs:>15} {r.peak_epr_qubits:>11} "
            f"{r.stall_cycles:>8.0f} {r.latency_overhead:>8.1%}"
        )
        if r.latency_overhead <= 0.04 and best is None:
            best = (window, r)
    if best is not None:
        window, r = best
        eager = machine.epr_pipeline(schedule, distance, window=10**9)
        savings = eager.peak_epr_pairs / max(r.peak_epr_pairs, 1)
        print(
            f"\nrecommended window: {window} logical cycles "
            f"({savings:.0f}x EPR qubit savings at "
            f"{r.latency_overhead:.1%} latency cost)"
        )


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "sq"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(app, size)
