"""Design-space exploration across error rates (the Figure 9 experiment).

Traces the planar/double-defect favorability boundary for one or more
applications over the full range of physical error rates, answering the
paper's headline design question: given your device quality and your
application, which surface code should you build?

Run:  python examples/design_space.py [apps...]
      (default: sq im)
"""

import sys

from repro.core import boundary_for_app, format_fig9


def main(apps: list[str]) -> None:
    lines = []
    for app in apps:
        print(f"tracing boundary for {app} ...")
        lines.append(boundary_for_app(app))
    print()
    print("Crossover boundary 1/pL per physical error rate")
    print("(below boundary -> planar; above -> double-defect)")
    print()
    print(format_fig9(lines))

    print("\nExample reading (paper Section 9): for near-term error rates")
    print("of 1e-4..1e-3, planar encoding is better for any application")
    print("shorter than the boundary value in those columns.")


if __name__ == "__main__":
    apps = sys.argv[1:] or ["sq", "im"]
    main(apps)
