"""Quickstart: compile a circuit and compare both surface codes.

Builds a small Ising-model instance, runs the full Figure 4 toolflow
(frontend -> mapping -> network simulation -> space-time estimate), and
reports which code wins at this size.

Run:  python examples/quickstart.py
"""

from repro.core import run_toolflow
from repro.tech import INTERMEDIATE


def main() -> None:
    result = run_toolflow("im", size=8, tech=INTERMEDIATE, policy=6)

    logical = result.logical
    print("=== frontend estimate ===")
    print(f"circuit:            {result.circuit.name}")
    print(f"logical qubits:     {logical.num_qubits}")
    print(f"logical operations: {logical.total_operations}")
    print(f"T count:            {logical.t_count}")
    print(f"parallelism factor: {logical.parallelism_factor:.2f}")
    print(f"target pL:          {logical.target_pl:.2e}")
    print(f"code distance:      {result.distance}")

    print("\n=== double-defect (tiled, braids) ===")
    braid = result.braid_result
    print(f"braid schedule:     {braid.schedule_length} cycles")
    print(f"critical path:      {braid.critical_path} cycles")
    print(f"schedule/CP ratio:  {braid.schedule_to_critical_ratio:.2f}")
    print(f"mesh utilization:   {braid.mean_utilization:.1%}")

    print("\n=== planar (Multi-SIMD, teleportation) ===")
    epr = result.epr_result
    print(f"EPR pairs:          {epr.total_pairs}")
    print(f"peak in flight:     {epr.peak_epr_pairs}")
    print(f"stall overhead:     {epr.latency_overhead:.1%}")

    print("\n=== space-time comparison ===")
    for estimate in (result.planar_estimate, result.double_defect_estimate):
        print(
            f"{estimate.code_name:>14}: {estimate.physical_qubits:.3e} qubits x "
            f"{estimate.seconds:.3e} s = {estimate.spacetime:.3e}"
        )
    print(f"\npreferred code at this size: {result.preferred_code}")


if __name__ == "__main__":
    main()
